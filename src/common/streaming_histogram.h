// Online-updatable CDF estimator.
//
// Implements the paper's *online updating process* (§III.B.2): every task
// completion contributes one post-queuing-time observation per server, and
// the per-server CDF F_l(t) must track drift (skew, uneven resources) at O(1)
// cost per observation.
//
// The estimator is a histogram with log-spaced bucket edges (constant
// relative resolution across several orders of magnitude of latency) and
// optional exponential decay so that old observations age out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tailguard {

struct StreamingHistogramOptions {
  /// Lower edge of the first finite bucket. Observations below are clamped.
  double min_value = 1e-3;
  /// Upper edge of the last finite bucket. Observations above land in an
  /// overflow bucket represented by `max_value`.
  double max_value = 1e6;
  /// Buckets per decade; 100 gives ~2.3% relative quantile resolution.
  std::size_t buckets_per_decade = 100;
  /// After every `decay_every` observations all bucket weights are scaled by
  /// `decay_factor`, implementing a sliding exponential window. Set
  /// decay_every = 0 to disable aging (cumulative histogram).
  std::size_t decay_every = 0;
  double decay_factor = 0.5;
};

class StreamingHistogram {
 public:
  explicit StreamingHistogram(StreamingHistogramOptions options = {});

  /// Records one observation. O(1).
  void add(double x);

  /// Total (decayed) observation weight.
  double total_weight() const { return total_; }
  /// Number of add() calls since construction (not decayed).
  std::uint64_t observations() const { return observations_; }

  /// Estimated F(x); 0 when no observations have been recorded.
  double cdf(double x) const;

  /// Estimated quantile, p in [0, 1]. Interpolates within the bucket
  /// (log-linearly, matching the bucket geometry).
  double quantile(double p) const;

  /// Decayed-weight mean of the observations.
  double mean() const;

  void clear();

 private:
  std::size_t bucket_index(double x) const;
  double bucket_lower(std::size_t i) const;
  double bucket_upper(std::size_t i) const;

  StreamingHistogramOptions options_;
  double log_min_;
  double inv_log_width_;  // buckets per unit of ln(x)
  std::vector<double> weights_;
  double total_ = 0.0;
  double weighted_sum_ = 0.0;
  std::uint64_t observations_ = 0;
  std::uint64_t since_decay_ = 0;
};

}  // namespace tailguard
