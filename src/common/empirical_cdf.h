// Empirical cumulative distribution function built from a finite sample.
//
// Used for the paper's *offline estimation process* (§III.B.2): collect task
// post-queuing-time samples from a profiling run, build F(t), and use it to
// seed every task server's CDF model.
#pragma once

#include <span>
#include <vector>

namespace tailguard {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Builds from an unsorted sample; the sample is copied and sorted.
  explicit EmpiricalCdf(std::span<const double> sample);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// F(x): fraction of the sample <= x. 0 for x below the minimum,
  /// linearly interpolated between adjacent order statistics.
  double cdf(double x) const;

  /// Quantile (inverse CDF) with linear interpolation between order
  /// statistics (Hyndman–Fan type 7). `p` in [0, 1].
  double quantile(double p) const;

  double min() const;
  double max() const;
  double mean() const { return mean_; }

  /// Read-only view of the sorted sample.
  std::span<const double> sorted_sample() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

}  // namespace tailguard
