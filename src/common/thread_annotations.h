// Compile-time concurrency discipline: Clang Thread Safety Analysis macros
// and annotated lock primitives (DESIGN.md §7.4).
//
// The TG_* macros expand to Clang's thread-safety attributes ("C/C++ Thread
// Safety Analysis", Hutchins et al.) when the compiler understands them and
// to nothing otherwise, so GCC builds compile the exact same code. Under
// Clang with -Wthread-safety (CMake option TG_THREAD_SAFETY, on by default
// when supported) the compiler proves, on every path, that each TG_GUARDED_BY
// member is only touched with its mutex held and that each TG_REQUIRES
// helper is only called under the right lock. tests/tsa_fixtures/ holds
// negative-compile fixtures proving the annotations actually bite.
//
// How to annotate new code:
//   - use tailguard::Mutex / MutexLock / CondVar instead of the std types;
//   - tag every member a mutex protects:      int depth_ TG_GUARDED_BY(mu_);
//   - tag helpers called under the lock:      void f() TG_REQUIRES(mu_);
//   - tag entry points that take the lock:    void g() TG_EXCLUDES(mu_);
//   - escape hatches (TG_NO_THREAD_SAFETY_ANALYSIS, lint allows) need a
//     why-comment — the tg_lint guarded-member rule enforces coverage in the
//     concurrent directories (src/runtime, src/net, src/common, src/shard).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define TG_HAS_TSA_ATTRIBUTE(x) __has_attribute(x)
#else
#define TG_HAS_TSA_ATTRIBUTE(x) 0
#endif

#if TG_HAS_TSA_ATTRIBUTE(capability)
#define TG_TSA_ATTR(x) __attribute__((x))
#else
#define TG_TSA_ATTR(x)  // expands to nothing outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define TG_CAPABILITY(x) TG_TSA_ATTR(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define TG_SCOPED_CAPABILITY TG_TSA_ATTR(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define TG_GUARDED_BY(x) TG_TSA_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define TG_PT_GUARDED_BY(x) TG_TSA_ATTR(pt_guarded_by(x))

/// Function may only be called while already holding the listed mutexes.
#define TG_REQUIRES(...) TG_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Shared (reader) flavour of TG_REQUIRES.
#define TG_REQUIRES_SHARED(...) \
  TG_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed mutexes and holds them on return.
#define TG_ACQUIRE(...) TG_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes (they must be held on entry).
#define TG_RELEASE(...) TG_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns `result` (e.g. true).
#define TG_TRY_ACQUIRE(...) TG_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/// Function may not be called while holding the listed mutexes (it takes
/// them itself — calling with them held would self-deadlock).
#define TG_EXCLUDES(...) TG_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define TG_ASSERT_CAPABILITY(x) TG_TSA_ATTR(assert_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define TG_RETURN_CAPABILITY(x) TG_TSA_ATTR(lock_returned(x))

/// Opts a function out of the analysis entirely. Every use must carry a
/// comment explaining why the protocol cannot be expressed (e.g. locks
/// acquired through a dynamic container, as in TailGuardService::lock_all).
#define TG_NO_THREAD_SAFETY_ANALYSIS TG_TSA_ATTR(no_thread_safety_analysis)

namespace tailguard {

/// std::mutex with the capability attribute, so TG_GUARDED_BY(mu_) members
/// and TG_REQUIRES(mu_) helpers are checked against it. Satisfies
/// BasicLockable/Lockable, so std::unique_lock<Mutex> and CondVar work on it
/// (std headers are system headers: such uses compile fine but are simply
/// not analyzed — prefer MutexLock, which is).
class TG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The annotated primitive is the one place naked lock()/unlock() calls are
  // legitimate: everything else goes through MutexLock.
  void lock() TG_ACQUIRE() { mu_.lock(); }          // tg-lint: allow(lock-discipline)
  void unlock() TG_RELEASE() { mu_.unlock(); }      // tg-lint: allow(lock-discipline)
  bool try_lock() TG_TRY_ACQUIRE(true) { return mu_.try_lock(); }  // tg-lint: allow(lock-discipline)

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex — the annotated std::lock_guard equivalent.
/// TSA tracks the capability from construction to destruction.
class TG_SCOPED_CAPABILITY MutexLock {
 public:
  // RAII boundary: the one lock()/unlock() pair everything else inherits.
  explicit MutexLock(Mutex& mu) TG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }  // tg-lint: allow(lock-discipline)
  ~MutexLock() TG_RELEASE() { mu_.unlock(); }  // tg-lint: allow(lock-discipline)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits directly on a tailguard::Mutex (which is a
/// BasicLockable), keeping the capability annotations intact across the
/// wait: TSA treats the mutex as continuously held, which matches the
/// caller-visible contract (wait() reacquires before returning).
///
/// Note: TSA analyzes lambdas as separate unannotated functions, so the
/// std::condition_variable predicate-wait idiom does not survive
/// annotation. Write the loop explicitly:
///
///   MutexLock lock(mu_);
///   while (!ready_locked()) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  void wait(Mutex& mu) TG_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      TG_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel_time)
      TG_REQUIRES(mu) {
    return cv_.wait_for(mu, rel_time);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // _any because it waits on Mutex itself rather than a unique_lock of the
  // wrapped std::mutex; the mutex stays the single source of truth for TSA.
  std::condition_variable_any cv_;
};

}  // namespace tailguard
