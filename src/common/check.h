// Lightweight precondition / invariant checking.
//
// TG_CHECK is always on and throws: use it to validate user-supplied
// configuration and other cold-path preconditions (Core Guidelines I.6).
// TG_DCHECK compiles away in NDEBUG builds: use it on hot paths where the
// condition is an internal invariant rather than an input contract.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tailguard {

/// Thrown when a TG_CHECK precondition is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace tailguard

#define TG_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr))                                                        \
      ::tailguard::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TG_CHECK_MSG(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream tg_os_;                                       \
      tg_os_ << msg;                                                   \
      ::tailguard::detail::check_failed(#expr, __FILE__, __LINE__,     \
                                        tg_os_.str());                 \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define TG_DCHECK(expr) ((void)0)
#else
#define TG_DCHECK(expr) TG_CHECK(expr)
#endif
