#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tailguard {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  TG_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  if (p <= 0.0) return sorted.front();
  // Nearest-rank: the smallest value with at least p% of the sample <= it.
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return sorted[rank - 1];
}

double percentile_inplace(std::span<double> sample, double p) {
  if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
  TG_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range: " << p);
  // nth_element instead of a full sort: the nearest-rank percentile is a
  // single order statistic, so selection returns the identical value in
  // O(n). Selection only permutes, so stacking several percentile calls on
  // one buffer stays exact.
  if (p <= 0.0) return *std::min_element(sample.begin(), sample.end());
  const auto n = sample.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  std::nth_element(sample.begin(), sample.begin() + (rank - 1), sample.end());
  return sample[rank - 1];
}

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> values(sample.begin(), sample.end());
  return percentile_inplace(values, p);
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
  return std::accumulate(sample.begin(), sample.end(), 0.0) /
         static_cast<double>(sample.size());
}

}  // namespace tailguard
