// Fixed-capacity moving window over boolean events.
//
// Backs the paper's query admission control (§III.C): the query handler
// tracks the fraction of tasks that missed their queuing deadline over a
// moving window and rejects queries while that ratio exceeds a threshold.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace tailguard {

class MovingWindowRatio {
 public:
  explicit MovingWindowRatio(std::size_t capacity)
      : bits_(capacity, false), capacity_(capacity) {
    TG_CHECK_MSG(capacity > 0, "window capacity must be positive");
  }

  /// Records one event (true = "hit", e.g. a deadline miss).
  void record(bool hit) {
    if (size_ == capacity_) {
      if (bits_[head_]) --hits_;
    } else {
      ++size_;
    }
    bits_[head_] = hit;
    if (hit) ++hits_;
    head_ = (head_ + 1) % capacity_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t hits() const { return hits_; }

  /// Fraction of true events among the last min(capacity, recorded) events;
  /// 0 when nothing has been recorded yet.
  double ratio() const {
    return size_ == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(size_);
  }

  void clear() {
    std::fill(bits_.begin(), bits_.end(), false);
    size_ = hits_ = head_ = 0;
  }

 private:
  std::vector<bool> bits_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::size_t hits_ = 0;
  std::size_t head_ = 0;
};

}  // namespace tailguard
