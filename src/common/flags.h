// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports `--name value`, `--name=value`, boolean flags (`--flag` /
// `--flag=false`) and `--help`. Unknown flags are errors; values are
// validated on parse. No global state — each tool builds its own parser.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace tailguard {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  /// Registers a flag bound to `*out` (which holds the default value).
  void add_string(const std::string& name, std::string* out,
                  const std::string& help);
  void add_double(const std::string& name, double* out,
                  const std::string& help);
  void add_int(const std::string& name, std::int64_t* out,
               const std::string& help);
  void add_size(const std::string& name, std::size_t* out,
                const std::string& help);
  void add_bool(const std::string& name, bool* out, const std::string& help);
  /// Comma-separated list of doubles, e.g. `--loads 0.2,0.3,0.4`.
  void add_double_list(const std::string& name, std::vector<double>* out,
                       const std::string& help);

  /// Parses argv. Returns true on success; on `--help` or error prints to
  /// `out`/`err` and returns false (the caller should exit — with status 0
  /// when help_requested(), non-zero otherwise).
  bool parse(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);

  /// True when the last parse() returned false because of --help.
  bool help_requested() const { return help_requested_; }

  void print_help(std::ostream& os) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    /// Applies a value; returns false if malformed.
    std::function<bool(const std::string&)> apply;
  };

  void add_flag(Flag flag);
  const Flag* find(const std::string& name) const;

  std::string description_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

/// Splits a comma-separated list; empty input gives an empty vector.
std::vector<std::string> split_csv(const std::string& text);

}  // namespace tailguard
