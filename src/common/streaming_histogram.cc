#include "common/streaming_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tailguard {

StreamingHistogram::StreamingHistogram(StreamingHistogramOptions options)
    : options_(options) {
  TG_CHECK_MSG(options_.min_value > 0.0, "log buckets need min_value > 0");
  TG_CHECK(options_.max_value > options_.min_value);
  TG_CHECK(options_.buckets_per_decade > 0);
  TG_CHECK(options_.decay_factor > 0.0 && options_.decay_factor <= 1.0);
  log_min_ = std::log(options_.min_value);
  const double per_ln = static_cast<double>(options_.buckets_per_decade) /
                        std::log(10.0);
  inv_log_width_ = per_ln;
  const double span = std::log(options_.max_value) - log_min_;
  const auto finite = static_cast<std::size_t>(std::ceil(span * per_ln));
  // +1 overflow bucket for observations above max_value.
  weights_.assign(finite + 1, 0.0);
}

std::size_t StreamingHistogram::bucket_index(double x) const {
  if (!(x > options_.min_value)) return 0;
  if (x >= options_.max_value) return weights_.size() - 1;
  const double pos = (std::log(x) - log_min_) * inv_log_width_;
  auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, weights_.size() - 2);
}

double StreamingHistogram::bucket_lower(std::size_t i) const {
  return std::exp(log_min_ + static_cast<double>(i) / inv_log_width_);
}

double StreamingHistogram::bucket_upper(std::size_t i) const {
  if (i + 1 >= weights_.size()) return options_.max_value;
  return std::exp(log_min_ + static_cast<double>(i + 1) / inv_log_width_);
}

void StreamingHistogram::add(double x) {
  weights_[bucket_index(x)] += 1.0;
  total_ += 1.0;
  weighted_sum_ += std::max(x, options_.min_value);
  ++observations_;
  if (options_.decay_every != 0 && ++since_decay_ >= options_.decay_every) {
    since_decay_ = 0;
    for (auto& w : weights_) w *= options_.decay_factor;
    total_ *= options_.decay_factor;
    weighted_sum_ *= options_.decay_factor;
  }
}

double StreamingHistogram::cdf(double x) const {
  if (total_ <= 0.0) return 0.0;
  if (x >= options_.max_value) return 1.0;
  if (x <= options_.min_value) return 0.0;
  const std::size_t idx = bucket_index(x);
  double below = 0.0;
  for (std::size_t i = 0; i < idx; ++i) below += weights_[i];
  // Log-linear interpolation within the bucket containing x.
  const double lo = bucket_lower(idx);
  const double hi = bucket_upper(idx);
  const double frac =
      hi > lo ? (std::log(x) - std::log(lo)) / (std::log(hi) - std::log(lo))
              : 1.0;
  return (below + frac * weights_[idx]) / total_;
}

double StreamingHistogram::quantile(double p) const {
  TG_CHECK_MSG(p >= 0.0 && p <= 1.0, "quantile prob out of range: " << p);
  if (total_ <= 0.0) return 0.0;
  const double target = p * total_;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (weights_[i] <= 0.0) continue;
    if (cum + weights_[i] >= target) {
      const double frac = weights_[i] > 0.0
                              ? std::clamp((target - cum) / weights_[i], 0.0, 1.0)
                              : 1.0;
      const double lo = std::log(bucket_lower(i));
      const double hi = std::log(bucket_upper(i));
      // The geometric bucket grid may slightly overshoot max_value; clamp so
      // the estimate never exceeds the configured domain.
      return std::min(options_.max_value, std::exp(lo + frac * (hi - lo)));
    }
    cum += weights_[i];
  }
  return options_.max_value;
}

double StreamingHistogram::mean() const {
  return total_ > 0.0 ? weighted_sum_ / total_ : 0.0;
}

void StreamingHistogram::clear() {
  std::fill(weights_.begin(), weights_.end(), 0.0);
  total_ = 0.0;
  weighted_sum_ = 0.0;
  observations_ = 0;
  since_decay_ = 0;
}

}  // namespace tailguard
