#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace tailguard {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stop = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = configured_threads();
  impl_->workers.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

std::size_t ThreadPool::num_threads() const { return impl_->workers.size(); }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(configured_threads());
  return pool;
}

std::size_t ThreadPool::parse_thread_count(const char* value) {
  if (value == nullptr) return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || parsed <= 0) return 0;
  // Clamp to something sane: a runaway value would just thrash.
  return static_cast<std::size_t>(std::min(parsed, 1024L));
}

std::size_t ThreadPool::configured_threads() {
  const std::size_t from_env =
      parse_thread_count(std::getenv("TAILGUARD_THREADS"));
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->queue.empty()) return false;
    task = std::move(impl_->queue.front());
    impl_->queue.pop_front();
  }
  task();
  return true;
}

void ThreadPool::help_until_ready(const std::function<bool()>& done) {
  while (!done()) {
    if (!run_one()) {
      // Queue momentarily empty but the awaited task is still in flight on
      // a worker; nap instead of spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

}  // namespace tailguard
