#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace tailguard {

// All locking lives on Impl itself (not on the ThreadPool forwarding shims):
// thread-safety analysis matches capability expressions syntactically, and
// `this->mutex` from an Impl method is checkable where `impl_->mutex` through
// the unique_ptr's operator-> is not.
struct ThreadPool::Impl {
  Mutex mutex;
  CondVar cv;
  std::deque<std::function<void()>> queue TG_GUARDED_BY(mutex);
  bool stop TG_GUARDED_BY(mutex) = false;
  // Written once by the ThreadPool constructor before any worker can touch
  // it, then only read; joined by the destructor after stop.
  // tg-lint: allow(guarded-member)
  std::vector<std::thread> workers;

  void worker_loop() TG_EXCLUDES(mutex) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex);
        while (!stop && queue.empty()) cv.wait(mutex);
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  void enqueue(std::function<void()> task) TG_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      queue.push_back(std::move(task));
    }
    cv.notify_one();
  }

  bool run_one() TG_EXCLUDES(mutex) {
    std::function<void()> task;
    {
      MutexLock lock(mutex);
      if (queue.empty()) return false;
      task = std::move(queue.front());
      queue.pop_front();
    }
    task();
    return true;
  }

  void request_stop() TG_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      stop = true;
    }
    cv.notify_all();
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = configured_threads();
  impl_->workers.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  impl_->request_stop();
  for (auto& w : impl_->workers) w.join();
}

std::size_t ThreadPool::num_threads() const { return impl_->workers.size(); }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(configured_threads());
  return pool;
}

std::size_t ThreadPool::parse_thread_count(const char* value) {
  if (value == nullptr) return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || parsed <= 0) return 0;
  // Clamp to something sane: a runaway value would just thrash.
  return static_cast<std::size_t>(std::min(parsed, 1024L));
}

std::size_t ThreadPool::configured_threads() {
  const std::size_t from_env =
      parse_thread_count(std::getenv("TAILGUARD_THREADS"));
  if (from_env > 0) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::enqueue(std::function<void()> task) {
  impl_->enqueue(std::move(task));
}

bool ThreadPool::run_one() { return impl_->run_one(); }

void ThreadPool::help_until_ready(const std::function<bool()>& done) {
  while (!done()) {
    if (!run_one()) {
      // Queue momentarily empty but the awaited task is still in flight on
      // a worker; nap instead of spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

}  // namespace tailguard
