#include "common/alloc_probe.h"

namespace tailguard {

namespace {
AllocCountFn g_alloc_count_fn = nullptr;
}  // namespace

void set_alloc_count_fn(AllocCountFn fn) { g_alloc_count_fn = fn; }

std::uint64_t alloc_count() {
  return g_alloc_count_fn != nullptr ? g_alloc_count_fn() : 0;
}

}  // namespace tailguard
