// Fixed-size worker pool for the experiment engine.
//
// The evaluation harness runs hundreds of independent discrete-event
// simulations; each is CPU-bound and allocation-heavy, so a plain
// thread-per-task model would thrash. The pool keeps one worker per core
// (overridable via TAILGUARD_THREADS) and supports *nested* parallelism:
// a task waiting on futures of sub-tasks helps drain the queue instead of
// blocking, so a batch of max-load searches can each fan out speculative
// probes onto the same pool without deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <vector>

namespace tailguard {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 means configured_threads()).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const;

  /// Process-wide pool sized by configured_threads(); created on first use.
  static ThreadPool& shared();

  /// Thread count from the TAILGUARD_THREADS env var, falling back to
  /// hardware_concurrency(); always at least 1.
  static std::size_t configured_threads();

  /// Parses a TAILGUARD_THREADS-style value ("8", " 4 ") into a thread
  /// count; returns 0 when the value is absent or unusable (caller falls
  /// back to hardware_concurrency). Exposed for testing.
  static std::size_t parse_thread_count(const char* value);

  /// Schedules `fn` and returns its future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs one queued task on the calling thread, if any is pending.
  /// Returns false when the queue was empty.
  bool run_one();

  /// Blocks until `future` is ready, executing queued pool tasks while
  /// waiting (this is what makes nested submit-and-wait safe).
  template <typename R>
  R wait(std::future<R>& future) {
    help_until_ready(
        [&future] {
          return future.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready;
        });
    return future.get();
  }

  /// Calls fn(i) for i in [0, n), distributed over the pool; returns when
  /// every iteration has finished. Iterations must be independent.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(submit([&fn, i] { fn(i); }));
    for (auto& f : futures) wait(f);
  }

 private:
  struct Impl;

  void enqueue(std::function<void()> task);
  /// Runs queued tasks until `done()`; naps briefly when the queue is empty.
  void help_until_ready(const std::function<bool()>& done);

  std::unique_ptr<Impl> impl_;
};

}  // namespace tailguard
