#include "common/empirical_cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tailguard {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  TG_CHECK_MSG(!sorted_.empty(), "empirical CDF needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
}

double EmpiricalCdf::cdf(double x) const {
  TG_CHECK(!sorted_.empty());
  if (x < sorted_.front()) return 0.0;
  if (x >= sorted_.back()) return 1.0;
  // Index of the first element > x.
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const auto idx = static_cast<std::size_t>(it - sorted_.begin());  // >= 1
  const double n = static_cast<double>(sorted_.size());
  // Interpolate between the step at sorted_[idx-1] and the next step, so the
  // CDF is continuous and strictly increasing across distinct sample values
  // (required: order-statistics inversion bisects over this function).
  const double lo = sorted_[idx - 1];
  const double hi = sorted_[idx];
  const double frac = hi > lo ? (x - lo) / (hi - lo) : 0.0;
  return (static_cast<double>(idx) + frac) / (n + 1.0);
}

double EmpiricalCdf::quantile(double p) const {
  TG_CHECK(!sorted_.empty());
  TG_CHECK_MSG(p >= 0.0 && p <= 1.0, "quantile prob out of range: " << p);
  const auto n = sorted_.size();
  if (n == 1) return sorted_.front();
  const double h = p * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  if (lo + 1 >= n) return sorted_.back();
  const double frac = h - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double EmpiricalCdf::min() const {
  TG_CHECK(!sorted_.empty());
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  TG_CHECK(!sorted_.empty());
  return sorted_.back();
}

}  // namespace tailguard
