#include "common/flags.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace tailguard {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  if (text.empty()) return parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::add_flag(Flag flag) {
  TG_CHECK_MSG(find(flag.name) == nullptr, "duplicate flag --" << flag.name);
  flags_.push_back(std::move(flag));
}

const FlagParser::Flag* FlagParser::find(const std::string& name) const {
  const auto it =
      std::find_if(flags_.begin(), flags_.end(),
                   [&name](const Flag& f) { return f.name == name; });
  return it == flags_.end() ? nullptr : &*it;
}

void FlagParser::add_string(const std::string& name, std::string* out,
                            const std::string& help) {
  TG_CHECK(out != nullptr);
  add_flag(Flag{name, help, "\"" + *out + "\"", false,
                [out](const std::string& v) {
                  *out = v;
                  return true;
                }});
}

void FlagParser::add_double(const std::string& name, double* out,
                            const std::string& help) {
  TG_CHECK(out != nullptr);
  std::ostringstream def;
  def << *out;
  add_flag(Flag{name, help, def.str(), false, [out](const std::string& v) {
                  char* end = nullptr;
                  const double parsed = std::strtod(v.c_str(), &end);
                  if (end == v.c_str() || *end != '\0') return false;
                  *out = parsed;
                  return true;
                }});
}

void FlagParser::add_int(const std::string& name, std::int64_t* out,
                         const std::string& help) {
  TG_CHECK(out != nullptr);
  add_flag(Flag{name, help, std::to_string(*out), false,
                [out](const std::string& v) {
                  char* end = nullptr;
                  const long long parsed = std::strtoll(v.c_str(), &end, 10);
                  if (end == v.c_str() || *end != '\0') return false;
                  *out = parsed;
                  return true;
                }});
}

void FlagParser::add_size(const std::string& name, std::size_t* out,
                          const std::string& help) {
  TG_CHECK(out != nullptr);
  add_flag(Flag{name, help, std::to_string(*out), false,
                [out](const std::string& v) {
                  char* end = nullptr;
                  const unsigned long long parsed =
                      std::strtoull(v.c_str(), &end, 10);
                  if (end == v.c_str() || *end != '\0') return false;
                  *out = static_cast<std::size_t>(parsed);
                  return true;
                }});
}

void FlagParser::add_bool(const std::string& name, bool* out,
                          const std::string& help) {
  TG_CHECK(out != nullptr);
  add_flag(Flag{name, help, *out ? "true" : "false", true,
                [out](const std::string& v) {
                  if (v == "" || v == "true" || v == "1") {
                    *out = true;
                  } else if (v == "false" || v == "0") {
                    *out = false;
                  } else {
                    return false;
                  }
                  return true;
                }});
}

void FlagParser::add_double_list(const std::string& name,
                                 std::vector<double>* out,
                                 const std::string& help) {
  TG_CHECK(out != nullptr);
  std::ostringstream def;
  for (std::size_t i = 0; i < out->size(); ++i)
    def << (i ? "," : "") << (*out)[i];
  add_flag(Flag{name, help, def.str(), false, [out](const std::string& v) {
                  std::vector<double> parsed;
                  for (const auto& part : split_csv(v)) {
                    char* end = nullptr;
                    const double x = std::strtod(part.c_str(), &end);
                    if (end == part.c_str() || *end != '\0') return false;
                    parsed.push_back(x);
                  }
                  *out = std::move(parsed);
                  return true;
                }});
}

void FlagParser::print_help(std::ostream& os) const {
  os << description_ << "\n\nflags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name << (f.is_bool ? "" : " <value>") << "\n        "
       << f.help << " (default: " << f.default_repr << ")\n";
  }
  os << "  --help\n        print this message\n";
}

bool FlagParser::parse(int argc, const char* const* argv, std::ostream& out,
                       std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      print_help(out);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      err << "unexpected positional argument: " << arg << "\n";
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = find(arg);
    if (flag == nullptr) {
      err << "unknown flag --" << arg << " (try --help)\n";
      return false;
    }
    if (!has_value && !flag->is_bool) {
      if (i + 1 >= argc) {
        err << "flag --" << arg << " needs a value\n";
        return false;
      }
      value = argv[++i];
      has_value = true;
    }
    if (!flag->apply(value)) {
      err << "bad value for --" << arg << ": \"" << value << "\"\n";
      return false;
    }
  }
  return true;
}

}  // namespace tailguard
