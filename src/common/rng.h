// Deterministic, fast pseudo-random number generation.
//
// The simulator needs (a) reproducible streams keyed by a user seed, so that
// policy comparisons use common random numbers, and (b) throughput well above
// std::mt19937_64. xoshiro256++ (Blackman & Vigna, 2019) satisfies both; the
// state is seeded from a user seed via SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace tailguard {

/// SplitMix64 step: used for seeding and as a cheap stateless hash.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though tailguard code mostly uses the
/// convenience members below.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x7a1160a2d5b3c4e9ULL) { reseed(seed); }

  /// Re-initialises the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1]; safe to pass to log().
  double uniform_pos() { return 1.0 - uniform(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_index(std::uint64_t bound) {
    TG_DCHECK(bound > 0);
    const std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derives an independent child generator; useful for giving each
  /// simulation component its own stream.
  Rng split() {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tailguard
