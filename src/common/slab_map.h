// Slab-backed maps for the per-task hot paths.
//
// Generalizes the storage scheme QueryTracker pioneered (dense index table,
// uint32_t slots, freelist-recycled entries) into two reusable primitives:
//
//  * SlabMap<T>     — keys drawn from an arithmetic id progression
//                     (start, start + stride, ...). A lookup is two array
//                     loads — (id - start) / stride into the slot table, the
//                     slot into the entry slab — never a hash probe. Erased
//                     entries recycle through a freelist, so resident memory
//                     is proportional to the live count plus 4 bytes per id
//                     ever inserted.
//  * SlabHashCache<T> — insert-only cache keyed by caller-supplied 64-bit
//                     keys, open-addressed: a power-of-two bucket table of
//                     uint32_t slots over a dense entry slab. clear() keeps
//                     every allocation, so steady-state refills (e.g. after a
//                     CDF-model version bump) cost zero mallocs.
//
// Both are deterministic: SlabMap iterates live entries in id order
// regardless of the insert/erase history, and SlabHashCache's layout depends
// only on the key sequence. Neither shrinks; both expose reserve() so
// callers sizing from a known workload can pin capacity before a hot loop.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace tailguard {

template <typename T>
class SlabMap {
 public:
  SlabMap() = default;
  /// Keys must come from the progression start, start + stride, ... with
  /// stride >= 1 and start < stride (the QueryTracker id scheme).
  SlabMap(std::uint64_t id_start, std::uint64_t id_stride)
      : start_(id_start), stride_(id_stride) {
    TG_CHECK_MSG(id_stride >= 1, "id stride must be >= 1");
    TG_CHECK_MSG(id_start < id_stride, "id start must be < stride");
  }

  /// Pre-sizes for `ids` total ids ever inserted and `live` simultaneously
  /// live entries, so a hot loop within those bounds never reallocates.
  void reserve(std::size_t ids, std::size_t live) {
    slot_by_idx_.reserve(ids);
    slab_.reserve(live);
    free_slots_.reserve(live);
  }

  /// Inserts a default-constructed entry for `id` (which must not be live)
  /// and returns it. Ids may arrive in any order within the progression;
  /// gaps in the slot table are backfilled as absent.
  T& emplace(std::uint64_t id) {
    const std::uint64_t idx = index_of(id);
    if (idx >= slot_by_idx_.size()) slot_by_idx_.resize(idx + 1, kNoSlot);
    TG_DCHECK(slot_by_idx_[idx] == kNoSlot);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slab_[slot] = T{};
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    slot_by_idx_[idx] = slot;
    ++size_;
    return slab_[slot];
  }

  /// Pointer to the live entry for `id`, or nullptr.
  T* find(std::uint64_t id) {
    const std::uint32_t slot = slot_of(id);
    return slot == kNoSlot ? nullptr : &slab_[slot];
  }
  const T* find(std::uint64_t id) const {
    const std::uint32_t slot = slot_of(id);
    return slot == kNoSlot ? nullptr : &slab_[slot];
  }

  bool contains(std::uint64_t id) const { return slot_of(id) != kNoSlot; }

  /// Removes `id`'s entry, recycling its slot. Returns whether it was live.
  bool erase(std::uint64_t id) {
    const std::uint64_t idx = index_of(id);
    if (idx >= slot_by_idx_.size() || slot_by_idx_[idx] == kNoSlot)
      return false;
    free_slots_.push_back(slot_by_idx_[idx]);
    slot_by_idx_[idx] = kNoSlot;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forgets every entry and the id history (ids restart from the
  /// progression's beginning) while keeping all allocations — the arena
  /// reset between simulator runs.
  void clear() {
    slot_by_idx_.clear();
    free_slots_.clear();
    slab_.clear();
    size_ = 0;
  }

  /// Visits live entries as fn(id, T&) in ascending id order — deterministic
  /// for any insert/erase history over the same live set.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint64_t idx = 0; idx < slot_by_idx_.size(); ++idx)
      if (slot_by_idx_[idx] != kNoSlot)
        fn(start_ + idx * stride_, slab_[slot_by_idx_[idx]]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t idx = 0; idx < slot_by_idx_.size(); ++idx)
      if (slot_by_idx_[idx] != kNoSlot)
        fn(start_ + idx * stride_, slab_[slot_by_idx_[idx]]);
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  std::uint64_t index_of(std::uint64_t id) const {
    return stride_ == 1 ? id : (id - start_) / stride_;
  }

  std::uint32_t slot_of(std::uint64_t id) const {
    const std::uint64_t idx = index_of(id);
    return idx < slot_by_idx_.size() ? slot_by_idx_[idx] : kNoSlot;
  }

  std::vector<T> slab_;                    ///< slot -> entry (recycled)
  std::vector<std::uint32_t> slot_by_idx_; ///< index -> slot, kNoSlot if dead
  std::vector<std::uint32_t> free_slots_;
  std::size_t size_ = 0;
  std::uint64_t start_ = 0;
  std::uint64_t stride_ = 1;
};

template <typename T>
class SlabHashCache {
 public:
  /// Finalizer mixing the caller's key into the bucket index. Keys are often
  /// already hashes, but structured keys ((cls << 32) | fanout) must not
  /// alias under the power-of-two mask.
  static std::uint64_t mix(std::uint64_t key) {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key;
  }

  T* find(std::uint64_t key) {
    if (entries_.empty()) return nullptr;
    const std::uint64_t mask = buckets_.size() - 1;
    for (std::uint64_t b = mix(key) & mask;; b = (b + 1) & mask) {
      const std::uint32_t slot = buckets_[b];
      if (slot == kNoSlot) return nullptr;
      if (entries_[slot].first == key) return &entries_[slot].second;
    }
  }

  /// Inserts key -> value; `key` must not be present.
  T& insert(std::uint64_t key, T value) {
    if (entries_.size() + 1 > (buckets_.size() * 7) / 10) grow();
    entries_.emplace_back(key, std::move(value));
    const std::uint32_t slot = static_cast<std::uint32_t>(entries_.size() - 1);
    place(key, slot);
    return entries_[slot].second;
  }

  std::size_t size() const { return entries_.size(); }

  /// Drops every entry but keeps the bucket table and entry slab capacity:
  /// the steady-state refill after a version bump allocates nothing.
  void clear() {
    entries_.clear();
    buckets_.assign(buckets_.size(), kNoSlot);
  }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  static constexpr std::size_t kMinBuckets = 16;

  void place(std::uint64_t key, std::uint32_t slot) {
    const std::uint64_t mask = buckets_.size() - 1;
    std::uint64_t b = mix(key) & mask;
    while (buckets_[b] != kNoSlot) b = (b + 1) & mask;
    buckets_[b] = slot;
  }

  void grow() {
    const std::size_t want =
        buckets_.empty() ? kMinBuckets : buckets_.size() * 2;
    buckets_.assign(want, kNoSlot);
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(entries_.size()); ++slot)
      place(entries_[slot].first, slot);
  }

  std::vector<std::pair<std::uint64_t, T>> entries_;  ///< insertion order
  std::vector<std::uint32_t> buckets_;  ///< power-of-two open addressing
};

}  // namespace tailguard
