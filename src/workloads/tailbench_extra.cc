#include "workloads/tailbench_extra.h"

#include "common/check.h"

namespace tailguard {

std::string to_string(TailbenchExtraApp app) {
  switch (app) {
    case TailbenchExtraApp::kSilo:
      return "Silo";
    case TailbenchExtraApp::kImgDnn:
      return "Img-dnn";
    case TailbenchExtraApp::kSpecjbb:
      return "Specjbb";
    case TailbenchExtraApp::kMoses:
      return "Moses";
    case TailbenchExtraApp::kSphinx:
      return "Sphinx";
  }
  TG_CHECK_MSG(false, "unknown TailbenchExtraApp");
  return {};
}

DistributionPtr make_extra_service_time_model(TailbenchExtraApp app) {
  // Anchors are order-of-magnitude extrapolations (see header). Times in ms.
  switch (app) {
    case TailbenchExtraApp::kSilo:
      // Key-value transactions: very fast, light tail.
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 0.010},
                                      {0.50, 0.025},
                                      {0.90, 0.040},
                                      {0.99, 0.060},
                                      {0.999, 0.120},
                                      {1.0, 0.500}},
          "Silo service time (extrapolated)");
    case TailbenchExtraApp::kImgDnn:
      // Fixed-size CNN inference: narrow distribution.
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 1.00},
                                      {0.50, 1.50},
                                      {0.90, 2.00},
                                      {0.99, 2.50},
                                      {0.999, 3.50},
                                      {1.0, 6.00}},
          "Img-dnn service time (extrapolated)");
    case TailbenchExtraApp::kSpecjbb:
      // Sub-ms business logic with rare long GC pauses.
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 0.10},
                                      {0.50, 0.35},
                                      {0.90, 0.70},
                                      {0.99, 1.20},
                                      {0.999, 8.00},
                                      {1.0, 40.00}},
          "Specjbb service time (extrapolated)");
    case TailbenchExtraApp::kMoses:
      // Sentence translation: cost scales with sentence length.
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 4.0},
                                      {0.50, 15.0},
                                      {0.90, 28.0},
                                      {0.99, 40.0},
                                      {0.999, 70.0},
                                      {1.0, 150.0}},
          "Moses service time (extrapolated)");
    case TailbenchExtraApp::kSphinx:
      // Utterance decoding: seconds, wide spread.
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 300.0},
                                      {0.50, 900.0},
                                      {0.90, 1900.0},
                                      {0.99, 2800.0},
                                      {0.999, 4000.0},
                                      {1.0, 6000.0}},
          "Sphinx service time (extrapolated)");
  }
  TG_CHECK_MSG(false, "unknown TailbenchExtraApp");
  return {};
}

}  // namespace tailguard
