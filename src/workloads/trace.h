// Query trace generation and (de)serialisation.
//
// The simulator can run either directly from generative models or from a
// pre-materialised trace; traces also let examples and tests pin an exact
// input. Format: CSV with header `arrival_ms,class_id,fanout`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dist/arrival.h"
#include "workloads/fanout.h"

namespace tailguard {

struct QueryRecord {
  double arrival_ms = 0.0;     ///< absolute arrival time
  std::uint32_t class_id = 0;  ///< service class index
  std::uint32_t fanout = 1;    ///< number of tasks spawned

  friend bool operator==(const QueryRecord&, const QueryRecord&) = default;
};

struct TraceSpec {
  std::size_t num_queries = 0;
  /// P(class = i); empty means a single class 0.
  std::vector<double> class_probabilities;
};

/// Generates a trace by sampling the arrival process, fanout model and class
/// mix. Arrival times are cumulative inter-arrival sums starting at 0.
std::vector<QueryRecord> generate_trace(const TraceSpec& spec,
                                        const ArrivalProcess& arrivals,
                                        const FanoutModel& fanout, Rng& rng);

/// Writes/reads the CSV representation. Reading validates the header and
/// monotone arrival times, throwing CheckFailure on malformed input.
void write_trace_csv(const std::vector<QueryRecord>& trace, std::ostream& os);
std::vector<QueryRecord> read_trace_csv(std::istream& is);

void write_trace_file(const std::vector<QueryRecord>& trace,
                      const std::string& path);
std::vector<QueryRecord> read_trace_file(const std::string& path);

}  // namespace tailguard
