// Tailbench-derived task service-time models (paper §IV.A, Fig. 3, Table II).
//
// The paper drives its simulation with task service-time samples measured
// from three Tailbench applications: Masstree (in-memory key-value store),
// Shore (SSD-backed transactional database) and Xapian (web search). The raw
// traces are not published, but the paper pins these statistics:
//
//             Tm (ms)   x99u(1)   x99u(10)   x99u(100)       [Table II]
//   Masstree   0.176     0.219     0.247      0.473
//   Shore      0.341     2.095     2.721      2.829
//   Xapian     0.925     2.590     2.998      3.308
//
// Via Eq. 2 with homogeneous servers, x99u(kf) = F^{-1}(0.99^{1/kf}), so
// Table II fixes the 0.99, 0.999 and 0.9999 quantiles of F exactly; Fig. 3
// adds the 95th percentile and the overall CDF shape. Each model below is a
// piecewise-linear quantile function anchored at those points (exact) with
// the remaining bulk anchors fitted to Fig. 3's shape so the mean lands
// within ~2% of Tm. See DESIGN.md "Substitutions".
#pragma once

#include <array>
#include <string>

#include "dist/piecewise_linear_quantile.h"

namespace tailguard {

enum class TailbenchApp { kMasstree, kShore, kXapian };

inline constexpr std::array<TailbenchApp, 3> kAllTailbenchApps = {
    TailbenchApp::kMasstree, TailbenchApp::kShore, TailbenchApp::kXapian};

std::string to_string(TailbenchApp app);

/// Statistics the paper publishes for each workload (times in ms).
struct TailbenchPaperStats {
  double mean_service_ms;  ///< Tm
  double x99u_1;           ///< unloaded p99 query latency, fanout 1
  double x99u_10;          ///< fanout 10
  double x99u_100;         ///< fanout 100
  double x95u_1;           ///< unloaded p95 task latency (read from Fig. 3)
};

/// Returns the paper-published statistics (Table II + Fig. 3).
TailbenchPaperStats paper_stats(TailbenchApp app);

/// Builds the calibrated service-time distribution for one application.
/// Quantiles at p = 0.99, 0.999, 0.9999 match Table II exactly (through
/// Eq. 2); the mean matches Tm within ~2%.
DistributionPtr make_service_time_model(TailbenchApp app);

}  // namespace tailguard
