#include "workloads/tailbench.h"

#include "common/check.h"

namespace tailguard {

std::string to_string(TailbenchApp app) {
  switch (app) {
    case TailbenchApp::kMasstree:
      return "Masstree";
    case TailbenchApp::kShore:
      return "Shore";
    case TailbenchApp::kXapian:
      return "Xapian";
  }
  TG_CHECK_MSG(false, "unknown TailbenchApp");
  return {};
}

TailbenchPaperStats paper_stats(TailbenchApp app) {
  switch (app) {
    case TailbenchApp::kMasstree:
      return {.mean_service_ms = 0.176,
              .x99u_1 = 0.219,
              .x99u_10 = 0.247,
              .x99u_100 = 0.473,
              .x95u_1 = 0.210};
    case TailbenchApp::kShore:
      return {.mean_service_ms = 0.341,
              .x99u_1 = 2.095,
              .x99u_10 = 2.721,
              .x99u_100 = 2.829,
              .x95u_1 = 1.000};
    case TailbenchApp::kXapian:
      return {.mean_service_ms = 0.925,
              .x99u_1 = 2.590,
              .x99u_10 = 2.998,
              .x99u_100 = 3.308,
              .x95u_1 = 1.900};
  }
  TG_CHECK_MSG(false, "unknown TailbenchApp");
  return {};
}

DistributionPtr make_service_time_model(TailbenchApp app) {
  // Tail anchors come straight from Table II via Eq. 2:
  //   q(0.99)   = x99u(1)
  //   q(0.999)  = x99u(10)   (0.99^{1/10}  = 0.998997... ~= 0.999)
  //   q(0.9999) = x99u(100)  (0.99^{1/100} = 0.9998995... ~= 0.9999)
  // Bulk anchors (p <= 0.95) reproduce Fig. 3's CDF shape and put the mean
  // within ~2% of Table II's Tm (verified by tests/workloads_test.cc).
  switch (app) {
    case TailbenchApp::kMasstree:
      // In-memory key-value store: very tight bulk around 0.1-0.2 ms with a
      // short tail to ~0.7 ms (Fig. 3a).
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 0.100},
                                      {0.25, 0.160},
                                      {0.50, 0.180},
                                      {0.75, 0.198},
                                      {0.90, 0.207},
                                      {0.95, 0.210},
                                      {0.99, 0.219},
                                      {0.999, 0.247},
                                      {0.9999, 0.473},
                                      {1.0, 0.700}},
          "Masstree service time");
    case TailbenchApp::kShore:
      // SSD-backed transactional DB: small median (~0.2 ms) with a long tail
      // out to ~3 ms (Fig. 3b).
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 0.080},
                                      {0.50, 0.220},
                                      {0.75, 0.350},
                                      {0.90, 0.600},
                                      {0.95, 1.000},
                                      {0.99, 2.095},
                                      {0.999, 2.721},
                                      {0.9999, 2.829},
                                      {1.0, 3.000}},
          "Shore service time");
    case TailbenchApp::kXapian:
      // Web search: broad bulk rising gradually from ~0.2 to ~2.5 ms
      // (Fig. 3c).
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 0.200},
                                      {0.25, 0.480},
                                      {0.50, 0.780},
                                      {0.75, 1.250},
                                      {0.90, 1.700},
                                      {0.95, 1.900},
                                      {0.99, 2.590},
                                      {0.999, 2.998},
                                      {0.9999, 3.308},
                                      {1.0, 3.600}},
          "Xapian service time");
  }
  TG_CHECK_MSG(false, "unknown TailbenchApp");
  return {};
}

}  // namespace tailguard
