// Query fanout models (paper §IV.A-B).
//
// A query's fanout kf is the number of tasks it spawns, dispatched to kf
// distinct task servers. The paper's main simulation uses a categorical
// fanout law P(kf) ∝ 1/kf over {1, 10, 100} ("similar to the one observed by
// Facebook"); the OLDI study (Fig. 6) uses a fixed fanout equal to the
// cluster size; the SaS testbed uses per-class fixed fanouts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tailguard {

class FanoutModel {
 public:
  virtual ~FanoutModel() = default;

  /// Draws a query fanout (>= 1).
  virtual std::uint32_t sample(Rng& rng) const = 0;

  /// Mean fanout, i.e. the expected number of tasks per query. Load
  /// normalisation (offered load <-> arrival rate) depends on this.
  virtual double mean() const = 0;

  /// Distinct fanout values this model can produce, ascending (used to
  /// enumerate per-fanout metric groups and to pre-warm quantile caches).
  virtual std::vector<std::uint32_t> support() const = 0;

  virtual std::string name() const = 0;
};

using FanoutModelPtr = std::shared_ptr<const FanoutModel>;

/// Every query has the same fanout (OLDI: kf == cluster size).
class FixedFanout final : public FanoutModel {
 public:
  explicit FixedFanout(std::uint32_t fanout);
  std::uint32_t sample(Rng&) const override { return fanout_; }
  double mean() const override { return fanout_; }
  std::vector<std::uint32_t> support() const override { return {fanout_}; }
  std::string name() const override;

 private:
  std::uint32_t fanout_;
};

/// Finite categorical distribution over fanout values.
class CategoricalFanout final : public FanoutModel {
 public:
  CategoricalFanout(std::vector<std::uint32_t> values,
                    std::vector<double> probabilities);

  std::uint32_t sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  std::vector<std::uint32_t> support() const override { return values_; }
  std::string name() const override;

  /// The paper's main mix: values {1, 10, 100} with P(kf) ∝ 1/kf, i.e.
  /// P = {100, 10, 1}/111 — each type contributes the same expected number
  /// of tasks.
  static CategoricalFanout paper_mix();

 private:
  std::vector<std::uint32_t> values_;
  std::vector<double> probs_;
  std::vector<double> cum_;
  double mean_;
};

/// Truncated Zipf-like fanout on {1..max}: P(k) ∝ 1/k^s. Models the
/// Facebook-page-style fanout law (65% under 20 at s≈1) for tests and
/// extension studies.
class ZipfFanout final : public FanoutModel {
 public:
  ZipfFanout(std::uint32_t max_fanout, double exponent = 1.0);
  std::uint32_t sample(Rng& rng) const override;
  double mean() const override { return mean_; }
  std::vector<std::uint32_t> support() const override;
  std::string name() const override;

 private:
  std::uint32_t max_;
  double exponent_;
  std::vector<double> cum_;
  double mean_;
};

}  // namespace tailguard
