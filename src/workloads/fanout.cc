#include "workloads/fanout.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace tailguard {

// ------------------------------------------------------------- FixedFanout

FixedFanout::FixedFanout(std::uint32_t fanout) : fanout_(fanout) {
  TG_CHECK_MSG(fanout >= 1, "fanout must be at least 1");
}

std::string FixedFanout::name() const {
  std::ostringstream os;
  os << "FixedFanout(" << fanout_ << ")";
  return os.str();
}

// ------------------------------------------------------- CategoricalFanout

CategoricalFanout::CategoricalFanout(std::vector<std::uint32_t> values,
                                     std::vector<double> probabilities)
    : values_(std::move(values)), probs_(std::move(probabilities)) {
  TG_CHECK_MSG(!values_.empty(), "categorical fanout needs values");
  TG_CHECK_MSG(values_.size() == probs_.size(),
               "value/probability count mismatch");
  TG_CHECK_MSG(std::is_sorted(values_.begin(), values_.end()),
               "fanout values must be ascending");
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    TG_CHECK_MSG(values_[i] >= 1, "fanout must be at least 1");
    TG_CHECK_MSG(probs_[i] >= 0.0, "probabilities must be non-negative");
    total += probs_[i];
  }
  TG_CHECK_MSG(total > 0.0, "probabilities must not all be zero");
  double cum = 0.0;
  mean_ = 0.0;
  cum_.reserve(probs_.size());
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    probs_[i] /= total;
    mean_ += probs_[i] * values_[i];
    cum += probs_[i];
    cum_.push_back(cum);
  }
  cum_.back() = 1.0;
}

std::uint32_t CategoricalFanout::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const auto idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cum_.begin()), values_.size() - 1);
  return values_[idx];
}

std::string CategoricalFanout::name() const {
  std::ostringstream os;
  os << "CategoricalFanout({";
  for (std::size_t i = 0; i < values_.size(); ++i)
    os << (i ? "," : "") << values_[i];
  os << "})";
  return os.str();
}

CategoricalFanout CategoricalFanout::paper_mix() {
  return CategoricalFanout({1, 10, 100},
                           {100.0 / 111.0, 10.0 / 111.0, 1.0 / 111.0});
}

// -------------------------------------------------------------- ZipfFanout

ZipfFanout::ZipfFanout(std::uint32_t max_fanout, double exponent)
    : max_(max_fanout), exponent_(exponent) {
  TG_CHECK_MSG(max_fanout >= 1, "max fanout must be at least 1");
  cum_.resize(max_);
  double total = 0.0;
  mean_ = 0.0;
  for (std::uint32_t k = 1; k <= max_; ++k)
    total += 1.0 / std::pow(static_cast<double>(k), exponent_);
  double cum = 0.0;
  for (std::uint32_t k = 1; k <= max_; ++k) {
    const double p = 1.0 / std::pow(static_cast<double>(k), exponent_) / total;
    mean_ += p * k;
    cum += p;
    cum_[k - 1] = cum;
  }
  cum_.back() = 1.0;
}

std::uint32_t ZipfFanout::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  return static_cast<std::uint32_t>(
             std::min<std::size_t>(static_cast<std::size_t>(it - cum_.begin()),
                                   cum_.size() - 1)) +
         1;
}

std::vector<std::uint32_t> ZipfFanout::support() const {
  std::vector<std::uint32_t> s(max_);
  std::iota(s.begin(), s.end(), 1u);
  return s;
}

std::string ZipfFanout::name() const {
  std::ostringstream os;
  os << "ZipfFanout(max=" << max_ << ", s=" << exponent_ << ")";
  return os.str();
}

}  // namespace tailguard
