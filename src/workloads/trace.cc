#include "workloads/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace tailguard {

std::vector<QueryRecord> generate_trace(const TraceSpec& spec,
                                        const ArrivalProcess& arrivals,
                                        const FanoutModel& fanout, Rng& rng) {
  std::vector<double> class_cum;
  if (!spec.class_probabilities.empty()) {
    double total = 0.0;
    for (double p : spec.class_probabilities) {
      TG_CHECK_MSG(p >= 0.0, "class probabilities must be non-negative");
      total += p;
    }
    TG_CHECK_MSG(total > 0.0, "class probabilities must not all be zero");
    double cum = 0.0;
    for (double p : spec.class_probabilities) {
      cum += p / total;
      class_cum.push_back(cum);
    }
    class_cum.back() = 1.0;
  }

  std::vector<QueryRecord> trace;
  trace.reserve(spec.num_queries);
  double t = 0.0;
  for (std::size_t i = 0; i < spec.num_queries; ++i) {
    t += arrivals.next_interarrival(rng);
    QueryRecord rec;
    rec.arrival_ms = t;
    rec.fanout = fanout.sample(rng);
    if (!class_cum.empty()) {
      const double u = rng.uniform();
      const auto it = std::upper_bound(class_cum.begin(), class_cum.end(), u);
      rec.class_id = static_cast<std::uint32_t>(std::min<std::size_t>(
          static_cast<std::size_t>(it - class_cum.begin()),
          class_cum.size() - 1));
    }
    trace.push_back(rec);
  }
  return trace;
}

void write_trace_csv(const std::vector<QueryRecord>& trace, std::ostream& os) {
  os << "arrival_ms,class_id,fanout\n";
  os.precision(17);
  for (const auto& rec : trace)
    os << rec.arrival_ms << ',' << rec.class_id << ',' << rec.fanout << '\n';
}

std::vector<QueryRecord> read_trace_csv(std::istream& is) {
  std::string line;
  TG_CHECK_MSG(static_cast<bool>(std::getline(is, line)), "empty trace file");
  TG_CHECK_MSG(line == "arrival_ms,class_id,fanout",
               "bad trace header: " << line);
  std::vector<QueryRecord> trace;
  double prev_arrival = -1.0;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    QueryRecord rec;
    char c1 = 0, c2 = 0;
    ls >> rec.arrival_ms >> c1 >> rec.class_id >> c2 >> rec.fanout;
    TG_CHECK_MSG(!ls.fail() && c1 == ',' && c2 == ',',
                 "malformed trace line " << line_no << ": " << line);
    TG_CHECK_MSG(rec.arrival_ms >= prev_arrival,
                 "non-monotone arrival at line " << line_no);
    TG_CHECK_MSG(rec.fanout >= 1, "fanout < 1 at line " << line_no);
    prev_arrival = rec.arrival_ms;
    trace.push_back(rec);
  }
  return trace;
}

void write_trace_file(const std::vector<QueryRecord>& trace,
                      const std::string& path) {
  std::ofstream os(path);
  TG_CHECK_MSG(os.good(), "cannot open for writing: " << path);
  write_trace_csv(trace, os);
  TG_CHECK_MSG(os.good(), "write failed: " << path);
}

std::vector<QueryRecord> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  TG_CHECK_MSG(is.good(), "cannot open for reading: " << path);
  return read_trace_csv(is);
}

}  // namespace tailguard
