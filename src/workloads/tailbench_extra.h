// The remaining Tailbench applications, as *extrapolated* service-time
// models.
//
// The paper uses three of Tailbench's eight latency-critical applications
// (Masstree, Shore, Xapian — one per distribution-shape group) and pins
// their statistics; see workloads/tailbench.h. The five models here cover
// the rest of the suite so the library spans the full range of
// latency-critical behaviours described in the Tailbench paper (Kasture &
// Sanchez, IISWC 2016): microsecond OLTP through multi-second speech
// recognition.
//
// IMPORTANT: unlike the three calibrated models, these are NOT anchored at
// paper-published numbers — they are order-of-magnitude extrapolations from
// Tailbench's qualitative characterisation, provided for breadth (examples,
// stress tests, sensitivity studies). None of the paper-reproduction
// benches depend on them.
#pragma once

#include <array>
#include <string>

#include "dist/piecewise_linear_quantile.h"

namespace tailguard {

enum class TailbenchExtraApp {
  kSilo,     ///< in-memory OLTP: tens of microseconds, light tail
  kImgDnn,   ///< handwriting recognition CNN: ~1-3 ms, fairly deterministic
  kSpecjbb,  ///< Java middleware: sub-ms bulk with a long GC-pause tail
  kMoses,    ///< statistical machine translation: tens of ms, moderate tail
  kSphinx,   ///< speech recognition: ~1 s, utterance-length spread
};

inline constexpr std::array<TailbenchExtraApp, 5> kAllTailbenchExtraApps = {
    TailbenchExtraApp::kSilo, TailbenchExtraApp::kImgDnn,
    TailbenchExtraApp::kSpecjbb, TailbenchExtraApp::kMoses,
    TailbenchExtraApp::kSphinx};

std::string to_string(TailbenchExtraApp app);

/// Builds the extrapolated service-time model (times in ms).
DistributionPtr make_extra_service_time_model(TailbenchExtraApp app);

}  // namespace tailguard
